(** Coverage testing as query execution — the Select-Project-Join
    alternative Section 5 rejects, implemented for the comparison: the
    clause body runs as a conjunctive query over the {e full} database with
    index-backed, fail-first backtracking and a node budget (exhaustion
    counts as non-coverage, the same under-approximation direction as the
    subsumption engine). *)

exception Budget_exhausted

type config = { node_budget : int }

val default_config : config

(** [candidates db subst lit] — substitutions extending [subst] that map
    [lit] onto a database tuple (index-probed on the most selective bound
    column). Exposed for {!Inference}. *)
val candidates :
  Relational.Database.t ->
  Logic.Substitution.t ->
  Logic.Literal.t ->
  Logic.Substitution.t list

(** [estimate db subst lit] — cheap candidate-count estimate used for
    literal ordering. *)
val estimate : Relational.Database.t -> Logic.Substitution.t -> Logic.Literal.t -> int

(** [satisfiable ?config db ~subst body] decides the conjunctive query,
    returning a witness.
    @raise Budget_exhausted when the node budget runs out. *)
val satisfiable :
  ?config:config ->
  Relational.Database.t ->
  subst:Logic.Substitution.t ->
  Logic.Literal.t list ->
  Logic.Substitution.t option

(** [covers ?config db clause example] — head bound to [example], body run
    as a query; a blown budget counts as non-coverage. *)
val covers :
  ?config:config -> Relational.Database.t -> Logic.Clause.t ->
  Relational.Relation.tuple -> bool

val definition_covers :
  ?config:config -> Relational.Database.t -> Logic.Clause.definition ->
  Relational.Relation.tuple -> bool

val count :
  ?config:config -> Relational.Database.t -> Logic.Clause.t ->
  Relational.Relation.tuple list -> int
