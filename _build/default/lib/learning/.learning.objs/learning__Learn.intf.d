lib/learning/learn.pp.mli: Bottom_clause Coverage Logic Random Relational
