lib/learning/inference.pp.ml: Array Hashtbl List Logic Query Relational
