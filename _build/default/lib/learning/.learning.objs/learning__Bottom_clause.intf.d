lib/learning/bottom_clause.pp.mli: Bias Logic Random Relational Sampling
