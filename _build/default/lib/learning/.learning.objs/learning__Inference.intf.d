lib/learning/inference.pp.mli: Logic Relational
