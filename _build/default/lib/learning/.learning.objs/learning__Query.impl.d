lib/learning/query.pp.ml: Array Coverage List Logic Relational
