lib/learning/explain.pp.mli: Coverage Format Logic Relational
