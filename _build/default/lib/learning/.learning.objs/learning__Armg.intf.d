lib/learning/armg.pp.mli: Coverage Logic Relational
