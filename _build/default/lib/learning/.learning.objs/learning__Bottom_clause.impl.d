lib/learning/bottom_clause.pp.ml: Array Bias Hashtbl List Logic Random Relational Sampling
