lib/learning/query.pp.mli: Logic Relational
