lib/learning/armg.pp.ml: Array Coverage List Logic
