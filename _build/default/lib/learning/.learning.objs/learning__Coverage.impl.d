lib/learning/coverage.pp.ml: Array Bias Bottom_clause Hashtbl List Logic Random Relational
