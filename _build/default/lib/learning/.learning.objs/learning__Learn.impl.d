lib/learning/learn.pp.ml: Armg Array Bottom_clause Coverage Hashtbl List Logic Logs Option Random Unix
