lib/learning/coverage.pp.mli: Bias Bottom_clause Logic Random Relational
