lib/learning/explain.pp.ml: Coverage Fmt List Logic
