(** Precision, recall and F-measure (Section 6.1, "Measure"). *)

type t = {
  precision : float;
  recall : float;
  f_measure : float;
}
[@@deriving eq, show { with_path = false }]

(** [of_counts ~true_positives ~covered ~positives] computes the paper's
    measures: precision = TP / covered, recall = TP / positives. A definition
    covering nothing has precision 0 by convention (the paper reports 0 for
    such rows). *)
let of_counts ~true_positives ~covered ~positives =
  let precision =
    if covered = 0 then 0.
    else float_of_int true_positives /. float_of_int covered
  in
  let recall =
    if positives = 0 then 0.
    else float_of_int true_positives /. float_of_int positives
  in
  let f_measure =
    if precision +. recall = 0. then 0.
    else 2. *. precision *. recall /. (precision +. recall)
  in
  { precision; recall; f_measure }

let zero = { precision = 0.; recall = 0.; f_measure = 0. }

(** [mean ms] averages each component; the cross-validation reports this. *)
let mean = function
  | [] -> zero
  | ms ->
      let n = float_of_int (List.length ms) in
      let sum f = List.fold_left (fun acc m -> acc +. f m) 0. ms in
      {
        precision = sum (fun m -> m.precision) /. n;
        recall = sum (fun m -> m.recall) /. n;
        f_measure = sum (fun m -> m.f_measure) /. n;
      }

let pp_row ppf m =
  Fmt.pf ppf "P=%.2f R=%.2f FM=%.2f" m.precision m.recall m.f_measure

(** [evaluate cov definition ~positives ~negatives] scores a learned
    definition on a labelled test set using coverage testing. *)
let evaluate cov definition ~positives ~negatives =
  let covers = Learning.Coverage.definition_covers cov definition in
  let tp = List.length (List.filter covers positives) in
  let fp = List.length (List.filter covers negatives) in
  of_counts ~true_positives:tp ~covered:(tp + fp)
    ~positives:(List.length positives)
