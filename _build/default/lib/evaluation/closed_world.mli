(** Negative-example generation under the closed-world assumption: sample
    type-correct target tuples (argument domains taken from database
    attributes sharing a type with the target's attributes, per the given
    bias) that are not listed as positives. For users who only have positive
    examples. *)

(** [negatives ?max_attempts_factor bias db ~rng ~positives ~count] samples
    up to [count] distinct negatives; may return fewer when the typed cross
    product is nearly covered by [positives]. Deterministic given [rng]. *)
val negatives :
  ?max_attempts_factor:int ->
  Bias.Language.t ->
  Relational.Database.t ->
  rng:Random.State.t ->
  positives:Relational.Relation.tuple list ->
  count:int ->
  Relational.Relation.tuple list
