(** Negative-example generation under the closed-world assumption.

    The paper's datasets ship labelled negatives, but a downstream user
    often has only positive examples of the new target relation. Under the
    closed-world assumption any target tuple not listed as positive is
    negative; this module samples such tuples {e plausibly} — each argument
    is drawn from the values observed in database attributes that share a
    type with the corresponding target attribute (types taken from a
    language bias, e.g. the one AutoBias induced), so generated negatives
    are type-correct rather than random noise the learner could dismiss for
    trivial reasons. *)

module Value = Relational.Value
module Schema = Relational.Schema

(* The observed value pool of a target attribute: union over database
   attributes sharing a type with it; falls back to the values seen in the
   positives when the bias gives the attribute no joinable peer. *)
let domain_of bias db ~positives pos =
  let target = Bias.Language.target bias in
  let from_db =
    List.fold_left
      (fun acc rel ->
        let name = Relational.Relation.name rel in
        List.fold_left
          (fun acc col ->
            if
              Bias.Language.share_type bias target.Schema.rel_name pos name col
            then
              List.fold_left
                (fun acc v -> Value.Set.add v acc)
                acc
                (Relational.Relation.distinct_values rel col)
            else acc)
          acc
          (List.init (Relational.Relation.arity rel) (fun i -> i)))
      Value.Set.empty
      (Relational.Database.relations db)
  in
  if Value.Set.is_empty from_db then
    List.fold_left
      (fun acc t -> Value.Set.add t.(pos) acc)
      Value.Set.empty positives
  else from_db

(** [negatives ?max_attempts_factor bias db ~rng ~positives ~count] samples
    [count] distinct type-correct target tuples that do not appear among
    [positives]. May return fewer when the domain is too small (e.g. the
    positives nearly cover the cross product). *)
let negatives ?(max_attempts_factor = 50) bias db ~rng ~positives ~count =
  let target = Bias.Language.target bias in
  let arity = Schema.arity target in
  let domains =
    Array.init arity (fun pos ->
        Array.of_list
          (Value.Set.elements (domain_of bias db ~positives pos)))
  in
  if Array.exists (fun d -> Array.length d = 0) domains then []
  else begin
    let taken = Hashtbl.create (List.length positives * 2) in
    List.iter (fun t -> Hashtbl.replace taken t ()) positives;
    let out = ref [] in
    let produced = ref 0 in
    let attempts = ref 0 in
    let max_attempts = (max_attempts_factor * count) + 100 in
    while !produced < count && !attempts < max_attempts do
      incr attempts;
      let t =
        Array.init arity (fun pos ->
            let d = domains.(pos) in
            d.(Random.State.int rng (Array.length d)))
      in
      if not (Hashtbl.mem taken t) then begin
        Hashtbl.replace taken t ();
        out := t :: !out;
        incr produced
      end
    done;
    List.rev !out
  end
