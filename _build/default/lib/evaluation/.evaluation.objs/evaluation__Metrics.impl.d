lib/evaluation/metrics.pp.ml: Fmt Learning List Ppx_deriving_runtime
