lib/evaluation/closed_world.pp.ml: Array Bias Hashtbl List Random Relational
