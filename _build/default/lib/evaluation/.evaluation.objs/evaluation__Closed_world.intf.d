lib/evaluation/closed_world.pp.mli: Bias Random Relational
