lib/evaluation/cross_validation.pp.mli: Format Learning Logic Metrics Random Relational
