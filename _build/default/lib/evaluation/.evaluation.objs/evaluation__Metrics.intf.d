lib/evaluation/metrics.pp.mli: Format Learning Logic Relational
