lib/evaluation/cross_validation.pp.ml: Array Datasets Fmt List Logic Metrics Printf Random Relational Unix
