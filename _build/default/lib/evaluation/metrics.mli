(** Precision, recall and F-measure (Section 6.1, "Measure"). *)

type t = {
  precision : float;
  recall : float;
  f_measure : float;
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string

(** [of_counts ~true_positives ~covered ~positives]: precision = TP/covered,
    recall = TP/positives, F = harmonic mean; degenerate denominators give
    0, never NaN. *)
val of_counts : true_positives:int -> covered:int -> positives:int -> t

val zero : t

(** [mean ms] averages componentwise ([zero] for the empty list). *)
val mean : t list -> t

val pp_row : Format.formatter -> t -> unit

(** [evaluate cov definition ~positives ~negatives] scores a learned
    definition on a labelled set with coverage testing. *)
val evaluate :
  Learning.Coverage.t ->
  Logic.Clause.definition ->
  positives:Relational.Relation.tuple list ->
  negatives:Relational.Relation.tuple list ->
  t
