(** Algorithm 4 of the paper, literally: stratified construction of the
    relevant-tuple set I_e^s by a depth-first traversal of the semi-join
    structure.

    [StratRec(R, A, M, i, d, s)] selects I_R = σ_(A ∈ M)(R); at the deepest
    level it samples [s] tuples per stratum of I_R (one stratum per distinct
    value of each constant-able attribute, or a single stratum without one);
    otherwise it recurses into every relation S sharing a type with an
    attribute B of R, then — backtracking — keeps the tuples of I_R that
    join the sampled tuples below.

    {!Strategy.Stratified} applies the same stratified sampling {e per
    bottom-clause step}, which is how the learner consumes it; this module
    is the standalone set-level algorithm, used by tests (the two must
    agree on reachability) and by anyone wanting the paper's I_e^s
    directly. *)

module Value = Relational.Value
module Relation = Relational.Relation
module Schema = Relational.Schema

type config = {
  depth : int;  (** d: recursion depth *)
  per_stratum : int;  (** s: tuples sampled per stratum *)
  max_branches : int;  (** safety bound on (attribute, relation) branches *)
}

let default_config = { depth = 2; per_stratum = 20; max_branches = 64 }

(* Strata of tuple list [tuples]: grouped by each constant-able attribute's
   value; one stratum overall if none. *)
let sample_strata ~rng ~per_stratum ~constant_positions tuples =
  match constant_positions with
  | [] ->
      (* single stratum: uniform sample *)
      Reservoir.sample rng per_stratum tuples
  | consts ->
      let strata = Hashtbl.create 16 in
      List.iter
        (fun t ->
          List.iter
            (fun c ->
              let key = (c, t.(c)) in
              let b = try Hashtbl.find strata key with Not_found -> [] in
              Hashtbl.replace strata key (t :: b))
            consts)
        tuples;
      Hashtbl.fold (fun k _ acc -> k :: acc) strata []
      |> List.sort compare
      |> List.concat_map (fun k ->
             Reservoir.sample rng per_stratum (Hashtbl.find strata k))
      |> List.sort_uniq compare

(* Branches out of relation [r]: for each attribute B of [r], the relations
   S (with the joining position) whose some attribute shares a type with
   r[B] and carries a [+] in some mode of S. *)
let branches bias db rel_name =
  let schema_of name = Schema.find (Bias.Language.schema bias) name in
  let rs = schema_of rel_name in
  List.concat
    (List.mapi
       (fun bpos _ ->
         List.filter_map
           (fun other ->
             let oname = Relational.Relation.name other in
             let os = Relation.schema other in
             let joins =
               List.init (Schema.arity os) (fun opos -> opos)
               |> List.filter (fun opos ->
                      Bias.Language.share_type bias rel_name bpos oname opos
                      && List.exists
                           (fun (m : Bias.Mode.t) ->
                             List.mem opos (Bias.Mode.input_positions m))
                           (Bias.Language.modes_of bias oname))
             in
             match joins with
             | [] -> None
             | opos :: _ -> Some (bpos, oname, opos))
           (Relational.Database.relations db))
       (Array.to_list rs.Schema.attrs))

(** [collect ?config db bias ~rng ~example] is the paper's I_e^s: the
    stratified sample of the tuples relevant to [example], as a list of
    (relation name, tuple) pairs. *)
let collect ?(config = default_config) db bias ~rng ~example =
  let target = Bias.Language.target bias in
  let out = Hashtbl.create 256 in
  let add rel_name t = Hashtbl.replace out (rel_name, t) () in
  (* StratRec(R, A, M, i, d, s) *)
  let rec strat_rec rel_name apos m i =
    match Relational.Database.find_opt db rel_name with
    | None -> []
    | Some rel ->
        let selected = Relation.select rel apos m in
        let constant_positions =
          List.init (Relation.arity rel) (fun p -> p)
          |> List.filter (fun p -> Bias.Language.constant_allowed bias rel_name p)
        in
        if i >= config.depth then begin
          let sampled =
            sample_strata ~rng ~per_stratum:config.per_stratum
              ~constant_positions selected
          in
          List.iter (add rel_name) sampled;
          sampled
        end
        else begin
          (* Recurse into each join branch; keep tuples of I_R joining the
             sampled tuples below (the backtracking step). *)
          let kept = Hashtbl.create 64 in
          let bs =
            let all = branches bias db rel_name in
            if List.length all > config.max_branches then
              List.filteri (fun i _ -> i < config.max_branches) all
            else all
          in
          List.iter
            (fun (bpos, oname, opos) ->
              let feed =
                List.fold_left
                  (fun acc t -> Value.Set.add t.(bpos) acc)
                  Value.Set.empty selected
              in
              let below = strat_rec oname opos feed (i + 1) in
              let joined_values =
                List.fold_left
                  (fun acc t -> Value.Set.add t.(opos) acc)
                  Value.Set.empty below
              in
              List.iter
                (fun t ->
                  if Value.Set.mem t.(bpos) joined_values then
                    Hashtbl.replace kept t ())
                selected)
            bs;
          (* Leaf-like contribution of this level too: sample the strata of
             the selection so sparse relations keep representatives even
             when no branch joins. *)
          List.iter
            (fun t -> Hashtbl.replace kept t ())
            (sample_strata ~rng ~per_stratum:config.per_stratum
               ~constant_positions selected);
          let kept = Hashtbl.fold (fun t () acc -> t :: acc) kept [] in
          List.iter (add rel_name) kept;
          kept
        end
  in
  (* Outer loop of Algorithm 4: every attribute of e, every relation with a
     type-compatible, [+]-marked attribute. *)
  Array.iteri
    (fun apos v ->
      List.iter
        (fun rel ->
          let rel_name = Relational.Relation.name rel in
          let os = Relation.schema rel in
          List.iter
            (fun opos ->
              if
                Bias.Language.share_type bias target.Schema.rel_name apos
                  rel_name opos
                && List.exists
                     (fun (m : Bias.Mode.t) ->
                       List.mem opos (Bias.Mode.input_positions m))
                     (Bias.Language.modes_of bias rel_name)
              then
                ignore
                  (strat_rec rel_name opos (Value.Set.singleton v) 1))
            (List.init (Schema.arity os) (fun p -> p)))
        (Relational.Database.relations db))
    example;
  Hashtbl.fold (fun k () acc -> k :: acc) out [] |> List.sort compare
