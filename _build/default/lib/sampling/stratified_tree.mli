(** Algorithm 4 of the paper, literally: stratified construction of the
    relevant-tuple set I_e^s by depth-first traversal of the semi-join
    structure, sampling [per_stratum] tuples per stratum at the leaves and
    keeping joining tuples while backtracking.

    {!Strategy.Stratified} applies the same stratification per bottom-clause
    step (how the learner consumes it); this module is the standalone
    set-level algorithm. *)

type config = {
  depth : int;  (** d: recursion depth *)
  per_stratum : int;  (** s: tuples sampled per stratum *)
  max_branches : int;  (** safety bound on (attribute, relation) branches *)
}

val default_config : config

(** [collect ?config db bias ~rng ~example] is the paper's I_e^s as sorted
    (relation name, tuple) pairs. *)
val collect :
  ?config:config ->
  Relational.Database.t ->
  Bias.Language.t ->
  rng:Random.State.t ->
  example:Relational.Relation.tuple ->
  (string * Relational.Relation.tuple) list
