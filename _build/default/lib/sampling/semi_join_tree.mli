(** The semi-join tree of Section 4.2.4: root = target relation; a node for
    R1 has a child for R2 labelled (A, B) whenever the bias lets R1[A] feed
    the [+] attribute R2[B] of some mode. Bottom-clause construction is a
    traversal of this tree; it is materialized here for inspection, fanout
    statistics, and tests. *)

type node = {
  relation : string;
  depth : int;
  via : (string * string) option;
      (** (parent attribute, this node's [+] attribute); [None] at root *)
  children : node list;
}

type t

val root : t -> node
val node_count : t -> int

(** [build ?max_children bias ~depth] expands the tree [depth] levels below
    the root; per-node fanout is truncated at [max_children] (rendering
    guard only). *)
val build : ?max_children:int -> Bias.Language.t -> depth:int -> t

val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit
