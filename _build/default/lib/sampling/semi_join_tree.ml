(** The semi-join tree of Section 4.2.4.

    Nodes are relation symbols; the root is the target relation; a node for
    relation R1 has a child for relation R2, labelled with the joining
    attribute pair (A, B), whenever the bias lets R1[A] feed the [+]
    attribute R2[B] of some mode of R2. A relation can appear under several
    parents (one node per join path), so the tree is expanded to a bounded
    depth [d] — the number of iterations of bottom-clause construction.

    Bottom-clause construction {e is} a traversal of this tree that shares
    each node's sampled tuple set with the node's children; the tree is
    materialized here for inspection (benchmarks print it), for fanout
    statistics, and for tests that check the bias induces the expected join
    paths. *)

module Schema = Relational.Schema

type node = {
  relation : string;
  depth : int;
  via : (string * string) option;
      (** (parent attribute, this node's [+] attribute); [None] at the root *)
  children : node list;
}

type t = { root : node; node_count : int }

let root t = t.root
let node_count t = t.node_count

(* Attribute pairs (parent_attr, child_attr) over which parent relation [p]
   can feed a mode of child relation [c]: the child's + attribute shares a
   type with some attribute of the parent. *)
let join_labels bias parent_schema (mode : Bias.Mode.t) =
  let child = mode.Bias.Mode.pred in
  let child_schema =
    match Schema.find_opt (Bias.Language.schema bias) child with
    | Some rs -> Some rs
    | None ->
        let tgt = Bias.Language.target bias in
        if String.equal tgt.Schema.rel_name child then Some tgt else None
  in
  match child_schema with
  | None -> []
  | Some child_schema ->
      Bias.Mode.input_positions mode
      |> List.concat_map (fun cpos ->
             Array.to_list parent_schema.Schema.attrs
             |> List.mapi (fun ppos pname -> (ppos, pname))
             |> List.filter_map (fun (ppos, pname) ->
                    if
                      Bias.Language.share_type bias
                        parent_schema.Schema.rel_name ppos child cpos
                    then Some (pname, child_schema.Schema.attrs.(cpos))
                    else None))

(** [build bias ~depth] expands the tree to [depth] levels below the root.
    [max_children] (default 64) bounds the per-node fanout to keep huge
    biases printable; truncation only affects rendering, not learning. *)
let build ?(max_children = 64) bias ~depth =
  let count = ref 0 in
  let schema_of name =
    let tgt = Bias.Language.target bias in
    if String.equal tgt.Schema.rel_name name then tgt
    else Schema.find (Bias.Language.schema bias) name
  in
  let rec expand relation d via =
    incr count;
    let children =
      if d >= depth then []
      else begin
        let parent_schema = schema_of relation in
        Bias.Language.modes bias
        |> List.concat_map (fun m ->
               join_labels bias parent_schema m
               |> List.map (fun lbl -> (m.Bias.Mode.pred, lbl)))
        |> List.sort_uniq compare
        |> (fun l ->
             if List.length l > max_children then List.filteri (fun i _ -> i < max_children) l
             else l)
        |> List.map (fun (child, lbl) -> expand child (d + 1) (Some lbl))
      end
    in
    { relation; depth = d; via; children }
  in
  let root = expand (Bias.Language.target bias).Schema.rel_name 0 None in
  { root; node_count = !count }

let rec pp_node ppf n =
  let label =
    match n.via with
    | None -> n.relation
    | Some (a, b) -> Printf.sprintf "%s  (on %s=%s)" n.relation a b
  in
  Fmt.pf ppf "@[<v2>%s%a@]" label
    (fun ppf children ->
      List.iter (fun c -> Fmt.pf ppf "@,%a" pp_node c) children)
    n.children

let pp ppf t = Fmt.pf ppf "@[<v>%a@,(%d nodes)@]" pp_node t.root t.node_count
