(** Reservoir sampling shared by the samplers. *)

(** [sample rng n l] is a uniform sample without replacement of at most [n]
    elements of [l] (all of [l] when short enough); deterministic given
    [rng]'s state. *)
val sample : Random.State.t -> int -> 'a list -> 'a list
