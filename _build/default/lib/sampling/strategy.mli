(** The three bottom-clause sampling techniques of Section 4 behind one
    interface. Each call answers: given the constants [known] that can feed
    the [+] attribute [pos] of relation [rel], return at most [size] tuples
    of σ_(pos ∈ known)(rel).

    - {!Naive} (Section 4.1): uniform over the matching tuples.
    - {!Random} (Section 4.2): Olken-style acceptance–rejection over the
      semi-join [known ⋊ rel] — draw a value uniformly, draw a matching
      tuple, accept with probability m(a)/M — a uniform sample of the
      semi-join output without materializing it.
    - {!Stratified} (Section 4.3, Algorithm 4): one stratum per distinct
      value of each constant-able attribute (or one stratum overall);
      [size] tuples per stratum, so rare relationships survive. *)

type t =
  | Naive
  | Random
  | Stratified

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** @raise Invalid_argument on unknown names. *)
val of_string : string -> t

val all : t list

(** [sample strategy ~rng ~rel ~pos ~known ~size ~constant_positions] draws
    tuples of σ_(pos ∈ known)(rel). [constant_positions] (attributes the
    bias allows as constants) defines {!Stratified}'s strata and is ignored
    otherwise. Deterministic given [rng]'s state. *)
val sample :
  t ->
  rng:Random.State.t ->
  rel:Relational.Relation.t ->
  pos:int ->
  known:Relational.Value.Set.t ->
  size:int ->
  constant_positions:int list ->
  Relational.Relation.tuple list
