lib/sampling/reservoir.pp.ml: Array Fun List Random
