lib/sampling/semi_join_tree.pp.mli: Bias Format
