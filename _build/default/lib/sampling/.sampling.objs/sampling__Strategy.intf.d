lib/sampling/strategy.pp.mli: Format Random Relational
