lib/sampling/reservoir.pp.mli: Random
