lib/sampling/stratified_tree.pp.ml: Array Bias Hashtbl List Relational Reservoir
