lib/sampling/semi_join_tree.pp.ml: Array Bias Fmt List Printf Relational String
