lib/sampling/stratified_tree.pp.mli: Bias Random Relational
