lib/sampling/strategy.pp.ml: Array Hashtbl List Ppx_deriving_runtime Random Relational Reservoir
