(** Reservoir sampling shared by the samplers. *)

(** [sample rng n l] is a uniform sample without replacement of at most [n]
    elements of [l] (all of [l] when it is short enough). Order of the
    result is unspecified but deterministic given [rng]'s state. *)
let sample rng n l =
  if n <= 0 then []
  else begin
    let res = Array.make n None in
    let seen = ref 0 in
    List.iter
      (fun x ->
        if !seen < n then res.(!seen) <- Some x
        else begin
          let j = Random.State.int rng (!seen + 1) in
          if j < n then res.(j) <- Some x
        end;
        incr seen)
      l;
    Array.to_list res |> List.filter_map Fun.id
  end
